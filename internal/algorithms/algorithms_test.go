package algorithms

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/problems"
	"repro/internal/sim"
)

func TestCVStepProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		a := rng.Uint64() % 1024
		b := rng.Uint64() % 1024
		if a == b {
			continue
		}
		c := rng.Uint64() % 1024
		if b == c {
			continue
		}
		na, nb := cvStep(a, b), cvStep(b, c)
		if na == nb {
			t.Fatalf("cvStep collision: step(%d,%d)=%d == step(%d,%d)", a, b, na, b, c)
		}
		if na >= 2*10 { // colors < 1024 = 2^10 bits → new color < 2*10
			t.Fatalf("cvStep(%d,%d) = %d out of range", a, b, na)
		}
	}
}

func TestCVIterations(t *testing.T) {
	if cvIterations(6) != 0 {
		t.Error("6 colors should need 0 iterations")
	}
	if cvIterations(7) == 0 {
		t.Error("7 colors should need iterations")
	}
	// log*-ish growth: doubling the exponent adds O(1).
	small := cvIterations(1 << 8)
	big := cvIterations(1 << 62)
	if big < small || big > small+3 {
		t.Errorf("iterations growth not log*-like: %d vs %d", small, big)
	}
}

func TestCVChainReducesToSix(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const space = 1 << 16
	iters := cvIterations(space)
	// A strictly increasing random chain (like IDs along parent chains).
	for iter := 0; iter < 100; iter++ {
		chain := make([]uint64, iters+2)
		cur := uint64(rng.Intn(100))
		for i := range chain {
			chain[i] = cur
			cur += 1 + uint64(rng.Intn((space-int(cur))/(len(chain)+1)+1))
		}
		c := cvChainColor(chain, iters)
		if c >= 6 {
			t.Fatalf("chain color %d not reduced to < 6", c)
		}
	}
}

func TestSixToThreeProper(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 500; iter++ {
		// Random proper {0..5} chain.
		chain := make([]uint64, 12)
		chain[0] = uint64(rng.Intn(6))
		for i := 1; i < len(chain); i++ {
			for {
				c := uint64(rng.Intn(6))
				if c != chain[i-1] {
					chain[i] = c
					break
				}
			}
		}
		// Final colors of adjacent positions must differ and be < 3.
		a := sixToThree(chain)
		b := sixToThree(chain[1:])
		if a >= 3 || b >= 3 {
			t.Fatalf("sixToThree out of range: %d, %d", a, b)
		}
		if a == b {
			t.Fatalf("sixToThree not proper: positions 0 and 1 both %d (chain %v)", a, chain)
		}
	}
}

func TestRingThreeColoring(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{3, 4, 7, 16, 33} {
		g, err := graph.Ring(n)
		if err != nil {
			t.Fatal(err)
		}
		g.ShufflePorts(rng)
		orient, err := RingOrientation(g)
		if err != nil {
			t.Fatal(err)
		}
		space := 4 * n
		ids, err := graph.UniqueIDs(g, space, rng)
		if err != nil {
			t.Fatal(err)
		}
		alg := RingThreeColoring{IDSpace: space}
		sol, err := sim.Run(g, sim.Inputs{IDs: ids, Orientation: &orient}, alg)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := sim.Verify(g, sol, problems.KColoring(3, 2)); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestRingThreeColoringRoundsLogStar(t *testing.T) {
	// Rounds grow like log* of the ID space: enormous spaces still need
	// single-digit-ish rounds.
	r1 := ColorReductionRounds(1 << 10)
	r2 := ColorReductionRounds(1 << 62)
	if r2-r1 > 3 {
		t.Errorf("rounds grow too fast: %d → %d", r1, r2)
	}
	if r1 < 4 {
		t.Errorf("rounds suspiciously small: %d", r1)
	}
}

func TestRingOrientationRejectsNonRing(t *testing.T) {
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RingOrientation(g); err == nil {
		t.Error("non-ring accepted")
	}
}

func TestWeakTwoColoringOddRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		n, delta int
	}{
		{8, 3}, {14, 3}, {20, 3}, {12, 5}, {16, 5}, {16, 7},
	}
	for _, c := range cases {
		for trial := 0; trial < 3; trial++ {
			g, err := graph.RandomRegular(c.n, c.delta, rng)
			if err != nil {
				t.Fatal(err)
			}
			g.ShufflePorts(rng)
			space := 2 * c.n
			ids, err := graph.UniqueIDs(g, space, rng)
			if err != nil {
				t.Fatal(err)
			}
			alg := WeakTwoColoring{IDSpace: space}
			sol, err := sim.Run(g, sim.Inputs{IDs: ids}, alg)
			if err != nil {
				t.Fatalf("n=%d Δ=%d: %v", c.n, c.delta, err)
			}
			if err := sim.Verify(g, sol, problems.WeakTwoColoringPointer(c.delta)); err != nil {
				t.Errorf("n=%d Δ=%d trial %d: %v", c.n, c.delta, trial, err)
			}
		}
	}
}

func TestWeakTwoColoringRejectsEvenDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := graph.RandomRegular(10, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := graph.UniqueIDs(g, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	alg := WeakTwoColoring{IDSpace: 20}
	if _, err := sim.Run(g, sim.Inputs{IDs: ids}, alg); err == nil {
		t.Error("even-degree graph accepted")
	}
}

func TestSinklessOrientationBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ n, delta int }{{10, 3}, {20, 3}, {15, 4}, {12, 5}} {
		g, err := graph.RandomRegular(tc.n, tc.delta, rng)
		if err != nil {
			t.Fatal(err)
		}
		o, err := SinklessOrientationBaseline(g)
		if err != nil {
			t.Fatalf("n=%d Δ=%d: %v", tc.n, tc.delta, err)
		}
		if !o.IsSinkless(g) {
			t.Errorf("n=%d Δ=%d: orientation has a sink", tc.n, tc.delta)
		}
	}
}

func TestSinklessOrientationBaselineRejectsTree(t *testing.T) {
	g, err := graph.RegularTree(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SinklessOrientationBaseline(g); err == nil {
		t.Error("acyclic graph accepted")
	}
}

func TestSinklessBaselineOnRing(t *testing.T) {
	g, err := graph.Ring(9)
	if err != nil {
		t.Fatal(err)
	}
	o, err := SinklessOrientationBaseline(g)
	if err != nil {
		t.Fatal(err)
	}
	if !o.IsSinkless(g) {
		t.Error("ring orientation has a sink")
	}
}
