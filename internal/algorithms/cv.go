// Package algorithms implements distributed algorithms in the port
// numbering / LOCAL model for the problems the paper studies: Cole–Vishkin
// color reduction and 3-coloring on oriented rings (the upper bound that
// Section 4.5 recovers through the speedup theorem), odd-degree weak
// 2-coloring (the Naor–Stockmeyer upper-bound side of Theorem 4), and a
// centralized sinkless orientation baseline (Section 4.4's problem).
//
// All algorithms are presented in the normal form of Section 3: a round
// count plus a function from radius-t views to per-port outputs, executed
// by the sim package.
package algorithms

import (
	"math/bits"
)

// cvStep performs one Cole–Vishkin color reduction step: given a node's
// current color and its (chain-)parent's current color, both interpreted
// as bit strings, it returns 2i + bit_i(c), where i is the lowest bit at
// which they differ. If child and parent colors differ, so do the new
// colors of any chain of nodes stepping simultaneously.
func cvStep(c, parent uint64) uint64 {
	diff := c ^ parent
	if diff == 0 {
		// Callers guarantee distinct colors; degrade deterministically
		// rather than crash on misuse.
		return c & 1
	}
	i := uint64(bits.TrailingZeros64(diff))
	return 2*i + ((c >> i) & 1)
}

// cvIterations returns the number of cvStep iterations needed to bring
// colors from {0..space-1} down to the fixed point {0..5}: the O(log*)
// phase of Cole–Vishkin.
func cvIterations(space int) int {
	if space <= 6 {
		return 0
	}
	iters := 0
	s := uint64(space)
	for s > 6 {
		s = 2 * uint64(bits.Len64(s-1))
		iters++
		if iters > 64 {
			// log* of any representable value is tiny; this is a guard
			// against logic errors, not a reachable state.
			panic("algorithms: cvIterations failed to converge")
		}
	}
	return iters
}

// cvChainColor computes the color of chain position 0 after iters
// simultaneous cvStep rounds, where chain[j] is the initial color (ID) of
// the j-th node along the parent direction. The chain must have length at
// least iters+1 and strictly pairwise-distinct adjacent entries.
func cvChainColor(chain []uint64, iters int) uint64 {
	cur := make([]uint64, len(chain))
	copy(cur, chain)
	for r := 0; r < iters; r++ {
		for j := 0; j+1 < len(cur); j++ {
			cur[j] = cvStep(cur[j], cur[j+1])
		}
		cur = cur[:len(cur)-1]
	}
	return cur[0]
}

// sixToThree reduces a proper coloring with colors {0..5} along a rooted
// chain to {0..2} in three shift-and-recolor rounds. chain[j] is the
// {0..5}-color of the j-th node along the parent direction (chain[0] is
// the node of interest); the chain must extend at least 4 entries beyond
// position 0 and be proper (adjacent entries distinct). It returns the
// final color of position 0.
//
// Each round ρ = 0,1,2 removes color 5−ρ: every node first adopts its
// parent's color (which makes all children of a node share its previous
// color), then nodes holding the removed color pick the smallest color in
// {0,1,2} differing from their parent's and children's current colors.
func sixToThree(chain []uint64) uint64 {
	cur := make([]uint64, len(chain))
	copy(cur, chain)
	for round := 0; round < 3; round++ {
		removed := uint64(5 - round)
		// Shift down: node j takes node j+1's color. The last entry has
		// no parent in view; it is dropped (callers provide slack).
		next := make([]uint64, len(cur)-1)
		prevOwn := make([]uint64, len(cur)-1)
		for j := 0; j+1 < len(cur); j++ {
			next[j] = cur[j+1]
			prevOwn[j] = cur[j]
		}
		// Recolor the removed class: avoid the (shifted) parent color and
		// the children's current color, which after the shift equals the
		// node's own pre-shift color.
		for j := range next {
			if next[j] != removed {
				continue
			}
			parent := uint64(6) // sentinel: no constraint
			if j+1 < len(next) {
				parent = next[j+1]
			}
			for c := uint64(0); c <= 2; c++ {
				if c != parent && c != prevOwn[j] {
					next[j] = c
					break
				}
			}
		}
		cur = next
	}
	return cur[0]
}

// chainFinalColor composes the two phases: IDs along a parent chain →
// proper 3-coloring. The chain must contain iters+5 entries (cvIterations
// slack plus the 4 entries sixToThree consumes), with adjacent entries
// distinct.
func chainFinalColor(chain []uint64, iters int) uint64 {
	// Phase 1 colors for positions 0..4 (each needs a window of iters+1).
	phase1 := make([]uint64, 0, 5)
	for j := 0; j < 5 && j+iters < len(chain); j++ {
		phase1 = append(phase1, cvChainColor(chain[j:], iters))
	}
	return sixToThree(phase1)
}

// chainLen returns the chain length required by chainFinalColor.
func chainLen(iters int) int { return iters + 5 }
