package algorithms

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// WeakTwoColoring solves weak 2-coloring on graphs of odd degree Δ with
// unique identifiers, in O(log* IDSpace) rounds — the upper-bound side of
// the problem whose Ω(log* Δ) lower bound is Theorem 4 of the paper.
// Outputs are labels of problems.WeakTwoColoringPointer(Δ).
//
// The algorithm (a provably correct variant in the spirit of
// Naor–Stockmeyer; see DESIGN.md for the substitution note):
//
//  1. Orient every edge from lower to higher ID. Since Δ is odd, every
//     node has strictly more outgoing or strictly more incoming edges;
//     its tentative color c0 is 1 ("majority out") or 0.
//  2. A node is unhappy if all neighbors share its tentative color. The
//     neighbors of an unhappy node are all same-colored, so the unhappy
//     sets W1 and W0 are closed: no unhappy node borders a node of the
//     other tentative color, and flipping unhappy nodes can never hurt a
//     happy node.
//  3. Every unhappy node v of color 1 has ≥ (Δ+1)/2 higher-ID neighbors;
//     its parent p(v) is the highest. Parent chains strictly increase in
//     ID, so they form forests whose roots attach to happy ("anchor")
//     nodes that keep color 1. Symmetrically for color 0 with lowest-ID
//     parents.
//  4. Each tree is 3-colored by Cole–Vishkin along parent chains
//     (anchors continue the chains with a deterministic virtual
//     evolution), and the 3-coloring is converted into a binary
//     keep-or-flip decision by purely local rules (top/leaf/default; see
//     bValue) that guarantee every unhappy node ends with a neighbor of
//     the opposite final color.
//  5. Each node points to a neighbor with a different final color.
type WeakTwoColoring struct {
	// IDSpace is the size of the identifier space.
	IDSpace int
}

var _ sim.Algorithm = WeakTwoColoring{}

// Name implements sim.Algorithm.
func (WeakTwoColoring) Name() string { return "weak-2-coloring-odd-degree" }

// Rounds implements sim.Algorithm.
func (a WeakTwoColoring) Rounds(n, delta int) int {
	return cvIterations(a.IDSpace) + 12
}

// Outputs implements sim.Algorithm.
func (a WeakTwoColoring) Outputs(view *sim.View) ([]core.Label, error) {
	if view.Degree%2 == 0 {
		return nil, fmt.Errorf("weak 2-coloring guarantee requires odd degree, got %d", view.Degree)
	}
	iters := cvIterations(a.IDSpace)
	own, err := finalColor(view, iters)
	if err != nil {
		return nil, err
	}
	pointerPort := -1
	for port := range view.Ports {
		nb := view.Ports[port].Sub
		if nb == nil {
			return nil, fmt.Errorf("view too shallow for neighbor color")
		}
		nbColor, err := finalColor(nb, iters)
		if err != nil {
			return nil, err
		}
		if nbColor != own {
			pointerPort = port
			break
		}
	}
	if pointerPort == -1 {
		return nil, fmt.Errorf("node %d: no differently colored neighbor (algorithm invariant violated)", view.ID)
	}
	out := make([]core.Label, view.Degree)
	for port := range out {
		// Labels of WeakTwoColoringPointer: index 2*color + (0 if
		// pointer else 1), with catalog colors {1,2} = {own=0, own=1}.
		if port == pointerPort {
			out[port] = core.Label(2 * own)
		} else {
			out[port] = core.Label(2*own + 1)
		}
	}
	return out, nil
}

// tentativeColor returns c0(v): 1 if v has more higher-ID neighbors than
// lower-ID ones. Needs view depth ≥ 1.
func tentativeColor(v *sim.View) (int, error) {
	higher := 0
	for _, p := range v.Ports {
		if p.Sub == nil {
			return 0, fmt.Errorf("view too shallow for tentative color")
		}
		if p.Sub.ID > v.ID {
			higher++
		}
	}
	if 2*higher > v.Degree {
		return 1, nil
	}
	return 0, nil
}

// unhappy reports whether all neighbors share v's tentative color. Needs
// depth ≥ 2.
func unhappy(v *sim.View) (bool, error) {
	c0, err := tentativeColor(v)
	if err != nil {
		return false, err
	}
	for _, p := range v.Ports {
		nb, err := tentativeColor(p.Sub)
		if err != nil {
			return false, err
		}
		if nb != c0 {
			return false, nil
		}
	}
	return true, nil
}

// parentPort returns the forest-parent port of an unhappy node: the
// highest-ID neighbor for tentative color 1, the lowest-ID neighbor for
// color 0 (both exist: odd degree gives a strict majority side).
func parentPort(v *sim.View) (int, error) {
	c0, err := tentativeColor(v)
	if err != nil {
		return 0, err
	}
	best := -1
	for port, p := range v.Ports {
		if c0 == 1 && p.Sub.ID <= v.ID {
			continue
		}
		if c0 == 0 && p.Sub.ID >= v.ID {
			continue
		}
		if best == -1 {
			best = port
			continue
		}
		cur := v.Ports[best].Sub.ID
		if (c0 == 1 && p.Sub.ID > cur) || (c0 == 0 && p.Sub.ID < cur) {
			best = port
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("unhappy node %d has no parent candidate (degree parity violated?)", v.ID)
	}
	return best, nil
}

// isChild reports whether the neighbor across the given port is an
// unhappy node whose parent is v. Needs depth ≥ 3 at v.
func isChild(v *sim.View, port int) (bool, error) {
	nb := v.Ports[port].Sub
	w, err := unhappy(nb)
	if err != nil {
		return false, err
	}
	if !w {
		return false, nil
	}
	pp, err := parentPort(nb)
	if err != nil {
		return false, err
	}
	return nb.Ports[pp].Sub.ID == v.ID, nil
}

// cmaxPort returns the port of v's highest-ID forest child, or -1 if v has
// no children. Needs depth ≥ 3.
func cmaxPort(v *sim.View) (int, error) {
	best := -1
	for port := range v.Ports {
		child, err := isChild(v, port)
		if err != nil {
			return 0, err
		}
		if !child {
			continue
		}
		if best == -1 || v.Ports[port].Sub.ID > v.Ports[best].Sub.ID {
			best = port
		}
	}
	return best, nil
}

// isTop reports whether unhappy node v heads its cmax-path: its parent is
// an anchor (happy) or v is not its parent's highest-ID child. Needs
// depth ≥ 4.
func isTop(v *sim.View) (bool, error) {
	pp, err := parentPort(v)
	if err != nil {
		return false, err
	}
	parent := v.Ports[pp].Sub
	w, err := unhappy(parent)
	if err != nil {
		return false, err
	}
	if !w {
		return true, nil
	}
	cp, err := cmaxPort(parent)
	if err != nil {
		return false, err
	}
	if cp == -1 {
		return false, fmt.Errorf("parent of unhappy node has no children (inconsistent view)")
	}
	return parent.Ports[cp].Sub.ID != v.ID, nil
}

// fcFinal computes the proper 3-coloring of the forest at unhappy node v:
// Cole–Vishkin along the parent chain (the anchor self-evolves with a
// deterministic virtual parent) followed by the three shift-and-recolor
// rounds, with virtual padding past the anchor.
func fcFinal(v *sim.View, iters int) (uint64, error) {
	maxLen := chainLen(iters)
	ids := make([]uint64, 0, maxLen)
	anchorIdx := -1
	cur := v
	for len(ids) < maxLen {
		ids = append(ids, uint64(cur.ID))
		w, err := unhappy(cur)
		if err != nil {
			return 0, err
		}
		if !w {
			anchorIdx = len(ids) - 1
			break
		}
		pp, err := parentPort(cur)
		if err != nil {
			return 0, err
		}
		if cur.Ports[pp].Sub == nil {
			return 0, fmt.Errorf("view too shallow while walking parent chain")
		}
		cur = cur.Ports[pp].Sub
	}

	// Phase 1: CV iterations. Positions past the anchor do not exist;
	// the anchor steps against a virtual parent (its color with the
	// lowest bit flipped), which preserves the child/parent distinctness
	// invariant.
	colors := make([]uint64, len(ids))
	copy(colors, ids)
	length := len(colors)
	for r := 0; r < iters; r++ {
		for j := 0; j < length; j++ {
			switch {
			case j == anchorIdx:
				colors[j] = cvStep(colors[j], colors[j]^1)
			case j+1 < length:
				colors[j] = cvStep(colors[j], colors[j+1])
			}
		}
		if anchorIdx == -1 {
			// No anchor in window: the last position's parent is unknown;
			// drop it.
			length--
			if length < 5 {
				return 0, fmt.Errorf("chain window exhausted (need %d ids, have %d)", maxLen, len(ids))
			}
		}
	}
	colors = colors[:length]

	// Virtual padding past the anchor: proper continuation derived from
	// the anchor's phase-1 color, so the reduction needs no special case.
	const pad = 9
	if anchorIdx >= 0 {
		base := colors[anchorIdx]
		colors = colors[:anchorIdx+1]
		for j := 1; len(colors) < anchorIdx+1+pad; j++ {
			colors = append(colors, (base+uint64(j))%6)
		}
	}
	if len(colors) < 5 {
		return 0, fmt.Errorf("phase-1 color window too short: %d", len(colors))
	}
	return sixToThree(colors), nil
}

// defaultB is the default keep-or-flip rule of a non-leaf unhappy node:
// compare the forest 3-colors of the node and its highest-ID child.
func defaultB(v *sim.View, iters int) (bool, error) {
	cp, err := cmaxPort(v)
	if err != nil {
		return false, err
	}
	if cp == -1 {
		return false, fmt.Errorf("defaultB on a leaf")
	}
	own, err := fcFinal(v, iters)
	if err != nil {
		return false, err
	}
	child, err := fcFinal(v.Ports[cp].Sub, iters)
	if err != nil {
		return false, err
	}
	return own > child, nil
}

// bValue computes the keep (true) / flip (false) decision of an unhappy
// node, per the path-decomposition rules proven in the package comment:
//
//   - leaf: the negation of its parent's decision (anchor parents count
//     as "keep");
//   - path top with a non-leaf highest child: the negation of that
//     child's default value;
//   - otherwise: the default rule.
func bValue(v *sim.View, iters int) (bool, error) {
	cp, err := cmaxPort(v)
	if err != nil {
		return false, err
	}
	if cp == -1 {
		// Leaf: negate the parent's decision.
		pp, err := parentPort(v)
		if err != nil {
			return false, err
		}
		parent := v.Ports[pp].Sub
		w, err := unhappy(parent)
		if err != nil {
			return false, err
		}
		if !w {
			return false, nil // anchor keeps; leaf flips
		}
		pb, err := bNonLeaf(parent, iters)
		if err != nil {
			return false, err
		}
		return !pb, nil
	}
	return bNonLeaf(v, iters)
}

// bNonLeaf computes the decision of a node known to have forest children.
func bNonLeaf(v *sim.View, iters int) (bool, error) {
	cp, err := cmaxPort(v)
	if err != nil {
		return false, err
	}
	if cp == -1 {
		return false, fmt.Errorf("bNonLeaf on a leaf")
	}
	top, err := isTop(v)
	if err != nil {
		return false, err
	}
	child := v.Ports[cp].Sub
	childCmax, err := cmaxPort(child)
	if err != nil {
		return false, err
	}
	if top && childCmax != -1 {
		cb, err := defaultB(child, iters)
		if err != nil {
			return false, err
		}
		return !cb, nil
	}
	return defaultB(v, iters)
}

// finalColor returns the final weak-coloring color of a node: its
// tentative color if happy; otherwise the forest decision (keep = the
// tentative color, flip = the opposite).
func finalColor(v *sim.View, iters int) (int, error) {
	c0, err := tentativeColor(v)
	if err != nil {
		return 0, err
	}
	w, err := unhappy(v)
	if err != nil {
		return 0, err
	}
	if !w {
		return c0, nil
	}
	keep, err := bValue(v, iters)
	if err != nil {
		return 0, err
	}
	if keep {
		return c0, nil
	}
	return 1 - c0, nil
}
