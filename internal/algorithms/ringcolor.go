package algorithms

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

// RingThreeColoring is the Cole–Vishkin O(log* n) 3-coloring algorithm on
// consistently oriented rings with unique identifiers — the upper bound
// that Section 4.5 recovers via the speedup theorem. Outputs are labels of
// problems.KColoring(3, 2): label c ∈ {0,1,2} on both ports.
type RingThreeColoring struct {
	// IDSpace is the size of the identifier space; the round count is
	// log*-in-IDSpace plus a constant.
	IDSpace int
}

var _ sim.Algorithm = RingThreeColoring{}

// Name implements sim.Algorithm.
func (RingThreeColoring) Name() string { return "cole-vishkin-ring-3-coloring" }

// Rounds implements sim.Algorithm: cvIterations(IDSpace) + 4 (three
// reduction rounds plus window slack).
func (a RingThreeColoring) Rounds(n, delta int) int {
	return chainLen(cvIterations(a.IDSpace)) - 1
}

// Outputs implements sim.Algorithm.
func (a RingThreeColoring) Outputs(view *sim.View) ([]core.Label, error) {
	if view.Degree != 2 {
		return nil, fmt.Errorf("ring coloring on node of degree %d", view.Degree)
	}
	iters := cvIterations(a.IDSpace)
	need := chainLen(iters)
	chain, err := successorChain(view, need)
	if err != nil {
		return nil, err
	}
	color := chainFinalColor(chain, iters)
	l := core.Label(color)
	return []core.Label{l, l}, nil
}

// successorChain walks the ring along outgoing edges collecting IDs,
// starting at the viewing node.
func successorChain(view *sim.View, length int) ([]uint64, error) {
	chain := make([]uint64, 0, length)
	cur := view
	for len(chain) < length {
		if cur.ID == 0 {
			return nil, fmt.Errorf("ring coloring requires unique identifiers")
		}
		chain = append(chain, uint64(cur.ID))
		if len(chain) == length {
			break
		}
		next, err := outPort(cur)
		if err != nil {
			return nil, err
		}
		if next.Sub == nil {
			return nil, fmt.Errorf("view too shallow: need chain of %d, got %d", length, len(chain))
		}
		cur = next.Sub
	}
	return chain, nil
}

// outPort returns the unique outgoing port of a ring node.
func outPort(v *sim.View) (*sim.PortView, error) {
	var out *sim.PortView
	for i := range v.Ports {
		if v.Ports[i].Oriented == sim.OrientOut {
			if out != nil {
				return nil, fmt.Errorf("node has multiple outgoing edges; ring orientation must be consistent")
			}
			out = &v.Ports[i]
		}
	}
	if out == nil {
		return nil, fmt.Errorf("node has no outgoing edge; ring orientation must be consistent")
	}
	return out, nil
}

// RingOrientation orients a ring built by graph.Ring consistently around
// the cycle (i → i+1 mod n), which gives every node exactly one outgoing
// edge — the directed-ring setting of the classic color reduction
// results.
func RingOrientation(g *graph.Graph) (graph.Orientation, error) {
	if !g.IsRegular() || g.MaxDegree() != 2 {
		return graph.Orientation{}, fmt.Errorf("algorithms: ring orientation requires a 2-regular graph")
	}
	n := g.N()
	o := graph.Orientation{Toward: make([]int, g.M())}
	for id := 0; id < g.M(); id++ {
		u, v, _, _ := g.EdgeEndpoints(id)
		switch {
		case u == 0 && v == n-1:
			o.Toward[id] = 0
		case (u+1)%n == v:
			o.Toward[id] = v
		default:
			o.Toward[id] = u
		}
	}
	return o, nil
}

// ColorReductionRounds reports the number of rounds RingThreeColoring uses
// for a given identifier space — the measured counterpart of the
// O(log* n) upper-bound table of Experiment E2/U1.
func ColorReductionRounds(idSpace int) int {
	return chainLen(cvIterations(idSpace)) - 1
}
