package algorithms

import (
	"fmt"

	"repro/internal/graph"
)

// SinklessOrientationBaseline computes a sinkless orientation centrally:
// every node of degree ≥ 1 receives at least one outgoing edge. It exists
// whenever every connected component contains a cycle (in particular on
// Δ-regular graphs with Δ ≥ 2), which the function verifies.
//
// This is the reference/baseline solver for the Section 4.4 problem: the
// paper's Ω(log n) lower bound (reproduced in Experiment E1) says no
// distributed algorithm can do this in o(log n) rounds, while the
// centralized construction is trivial — orient each component's tree
// edges toward a cycle and the cycle around itself.
func SinklessOrientationBaseline(g *graph.Graph) (graph.Orientation, error) {
	n := g.N()
	o := graph.Orientation{Toward: make([]int, g.M())}
	assigned := make([]bool, g.M())
	visited := make([]bool, n)

	for start := 0; start < n; start++ {
		if visited[start] || g.Degree(start) == 0 {
			continue
		}
		// Find a cycle in this component by DFS.
		cycle, err := findCycle(g, start)
		if err != nil {
			return graph.Orientation{}, err
		}
		// Orient the cycle around itself.
		onCycle := make(map[int]bool, len(cycle))
		for _, v := range cycle {
			onCycle[v] = true
		}
		for i := range cycle {
			u, v := cycle[i], cycle[(i+1)%len(cycle)]
			id, ok := g.EdgeBetween(u, v)
			if !ok {
				return graph.Orientation{}, fmt.Errorf("algorithms: cycle edge (%d,%d) missing", u, v)
			}
			o.Toward[id] = v
			assigned[id] = true
		}
		// BFS from the cycle, orienting each discovered edge toward the
		// BFS parent (i.e. toward the cycle), giving every off-cycle node
		// an outgoing edge.
		queue := make([]int, 0, n)
		for _, v := range cycle {
			visited[v] = true
			queue = append(queue, v)
		}
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for port := 0; port < g.Degree(v); port++ {
				w, id, _ := g.Neighbor(v, port)
				if visited[w] {
					if !assigned[id] {
						// Non-tree, non-cycle edge: orientation is free.
						o.Toward[id] = v
						assigned[id] = true
					}
					continue
				}
				visited[w] = true
				o.Toward[id] = v // w → v: toward the cycle
				assigned[id] = true
				queue = append(queue, w)
			}
		}
	}
	if !o.IsSinkless(g) {
		return graph.Orientation{}, fmt.Errorf("algorithms: baseline produced a sink (component without a cycle?)")
	}
	return o, nil
}

// findCycle returns the vertex sequence of some cycle in the component of
// start, or an error if the component is acyclic.
func findCycle(g *graph.Graph, start int) ([]int, error) {
	parent := make(map[int]int)
	parentEdge := make(map[int]int)
	parent[start] = -1
	parentEdge[start] = -1
	queue := []int{start}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for port := 0; port < g.Degree(v); port++ {
			w, id, _ := g.Neighbor(v, port)
			if id == parentEdge[v] {
				continue
			}
			if _, seen := parent[w]; !seen {
				parent[w] = v
				parentEdge[w] = id
				queue = append(queue, w)
				continue
			}
			// Found a cycle through v and w: splice the two root paths.
			pathV := rootPath(parent, v)
			pathW := rootPath(parent, w)
			return spliceCycle(pathV, pathW), nil
		}
	}
	return nil, fmt.Errorf("algorithms: component of node %d is acyclic; sinkless orientation impossible", start)
}

func rootPath(parent map[int]int, v int) []int {
	var path []int
	for v != -1 {
		path = append(path, v)
		v = parent[v]
	}
	return path
}

// spliceCycle combines two root paths meeting at their lowest common
// ancestor into a cycle v ... lca ... w.
func spliceCycle(pathV, pathW []int) []int {
	onV := make(map[int]int, len(pathV))
	for i, x := range pathV {
		onV[x] = i
	}
	lcaW := 0
	for i, x := range pathW {
		if _, ok := onV[x]; ok {
			lcaW = i
			break
		}
	}
	lcaV := onV[pathW[lcaW]]
	cycle := make([]int, 0, lcaV+lcaW+2)
	for i := 0; i <= lcaV; i++ {
		cycle = append(cycle, pathV[i])
	}
	for i := lcaW - 1; i >= 0; i-- {
		cycle = append(cycle, pathW[i])
	}
	return cycle
}
