package solve_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/problems"
	"repro/internal/sim"
	"repro/internal/solve"
)

// TestSolveMatchesOracle is the round-trip between the centralized
// solver and the brute-force oracle: on a single instance with unique
// identifiers and t = n rounds, every node's view is distinct, so a
// distributed algorithm is exactly a per-node assignment and the
// oracle's decision coincides with centralized solvability. For every
// n <= 8 instance below, oracle says solvable ⇔ solve finds a
// solution.
func TestSolveMatchesOracle(t *testing.T) {
	ring := func(n int) *graph.Graph {
		g, err := graph.Ring(n)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	k4, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	k33, err := graph.CompleteBipartite(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		g    *graph.Graph
		p    *core.Problem
	}{
		{"2col-C4", ring(4), problems.KColoring(2, 2)},
		{"2col-C5", ring(5), problems.KColoring(2, 2)}, // odd cycle: unsolvable
		{"3col-C5", ring(5), problems.KColoring(3, 2)},
		{"3col-C7", ring(7), problems.KColoring(3, 2)},
		{"SO-C6", ring(6), problems.SinklessOrientation(2)},
		{"2col-K4", k4, problems.KColoring(2, 3)}, // K4 is not 2-colorable
		{"2col-K33", k33, problems.KColoring(2, 3)},
		{"SC-K4", k4, problems.SinklessColoring(3)},
		{"SO-K4", k4, problems.SinklessOrientation(3)},
		{"SO-K33", k33, problems.SinklessOrientation(3)},
		{"SC-prism", oracle.Prism(), problems.SinklessColoring(3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.N() > 8 {
				t.Fatalf("instance has %d nodes; round-trip cases are capped at 8", tc.g.N())
			}
			sol, found, err := solve.Solve(tc.g, tc.p, solve.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if found {
				if err := sim.Verify(tc.g, sol, tc.p); err != nil {
					t.Fatalf("solver returned an invalid solution: %v", err)
				}
			}
			insts := oracle.WithUniqueIDs([]oracle.Instance{{Name: tc.name, G: tc.g}})
			v, err := oracle.Decide(tc.p, insts, tc.g.N())
			if err != nil {
				t.Fatal(err)
			}
			if v.Classes != tc.g.N() {
				t.Fatalf("expected one view class per node (%d), got %d — ids or radius too weak", tc.g.N(), v.Classes)
			}
			if v.Solvable != found {
				t.Fatalf("oracle says solvable=%v, solver found=%v", v.Solvable, found)
			}
		})
	}
}

// TestSolveOracleAgreementSummary cross-checks the two deciders over a
// small sweep of (problem, ring size) points and reports any
// disagreement with the full point list.
func TestSolveOracleAgreementSummary(t *testing.T) {
	var disagreements []string
	for n := 3; n <= 8; n++ {
		g, err := graph.Ring(n)
		if err != nil {
			t.Fatal(err)
		}
		for k := 2; k <= 3; k++ {
			p := problems.KColoring(k, 2)
			_, found, err := solve.Solve(g, p, solve.Options{})
			if err != nil {
				t.Fatal(err)
			}
			insts := oracle.WithUniqueIDs([]oracle.Instance{{Name: "ring", G: g}})
			v, err := oracle.Decide(p, insts, n)
			if err != nil {
				t.Fatal(err)
			}
			if v.Solvable != found {
				disagreements = append(disagreements,
					fmt.Sprintf("%d-coloring on C_%d: oracle=%v solve=%v", k, n, v.Solvable, found))
			}
		}
	}
	if len(disagreements) > 0 {
		t.Fatalf("oracle/solve disagreements: %v", disagreements)
	}
}
