package solve

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/problems"
	"repro/internal/sim"
)

func TestSolveTwoColoringOnEvenRing(t *testing.T) {
	g, err := graph.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	p := problems.KColoring(2, 2)
	sol, ok, err := Solve(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("even ring reported not 2-colorable")
	}
	if err := sim.Verify(g, sol, p); err != nil {
		t.Errorf("solution invalid: %v", err)
	}
}

func TestSolveTwoColoringOnOddRingUnsat(t *testing.T) {
	g, err := graph.Ring(7)
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := Solve(g, problems.KColoring(2, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("odd ring reported 2-colorable")
	}
}

func TestSolveSinklessOrientation(t *testing.T) {
	g := graph.Petersen()
	p := problems.SinklessOrientation(3)
	sol, ok, err := Solve(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Petersen graph reported without sinkless orientation")
	}
	if err := sim.Verify(g, sol, p); err != nil {
		t.Errorf("solution invalid: %v", err)
	}
}

func TestSolveRejectsDegreeMismatch(t *testing.T) {
	g, err := graph.Path(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Solve(g, problems.KColoring(3, 2), Options{}); err == nil {
		t.Error("degree mismatch accepted")
	}
}

func TestSolveStepBudget(t *testing.T) {
	g, err := graph.Ring(15)
	if err != nil {
		t.Fatal(err)
	}
	// Unsatisfiable instance with a tiny budget must error, not hang.
	_, _, err = Solve(g, problems.KColoring(2, 2), Options{MaxSteps: 10})
	if err == nil {
		t.Error("budget exhaustion not reported")
	}
}

func TestSolveWeakColoringPointer(t *testing.T) {
	g := graph.Petersen()
	p := problems.WeakTwoColoringPointer(3)
	sol, ok, err := Solve(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("weak 2-coloring unsatisfiable on Petersen")
	}
	if err := sim.Verify(g, sol, p); err != nil {
		t.Errorf("solution invalid: %v", err)
	}
	_ = core.Label(0)
}
