// Package solve provides a centralized constraint solver that finds a
// correct global solution of a locally checkable problem on a concrete
// graph, or proves none exists.
//
// It is a substrate, not a distributed algorithm: the test and experiment
// harnesses use it to (a) produce reference solutions of derived problems
// (e.g. a Π'_1 solution fed into the Lemma 3 transformation), and (b)
// establish unsolvability of small instances.
package solve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

// Options tunes the backtracking search.
type Options struct {
	// MaxSteps caps backtracking steps; 0 means the default.
	MaxSteps int
}

const defaultMaxSteps = 50_000_000

// Solve finds per-port output labels on g satisfying p's edge and node
// constraints, or returns (nil, false) if the instance is unsatisfiable.
// An error is returned only if the search exceeds its step budget or the
// instance is malformed (e.g. degree ≠ Δ).
//
// The search assigns nodes one at a time (choosing a full node
// configuration and a port assignment of its labels), propagating edge
// constraints to already-assigned neighbors.
func Solve(g *graph.Graph, p *core.Problem, opts Options) (*sim.Solution, bool, error) {
	delta := p.Delta()
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != delta {
			return nil, false, fmt.Errorf("solve: node %d has degree %d, problem defined for Δ=%d",
				v, g.Degree(v), delta)
		}
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultMaxSteps
	}

	// Precompute the edge relation for O(1) compatibility checks.
	n := p.Alpha.Size()
	compatible := make([][]bool, n)
	for i := range compatible {
		compatible[i] = make([]bool, n)
	}
	for _, cfg := range p.Edge.Configs() {
		labels := cfg.Expand()
		compatible[labels[0]][labels[1]] = true
		compatible[labels[1]][labels[0]] = true
	}

	// Per-node candidate assignments: all distinct port-orderings of every
	// node configuration. To keep the candidate lists small we enumerate
	// distinct permutations of the configuration's multiset.
	nodeConfigs := p.Node.Configs()
	perms := make([][][]core.Label, len(nodeConfigs))
	for i, cfg := range nodeConfigs {
		perms[i] = core.DistinctPermutations(cfg.Expand())
	}

	// Order nodes by BFS so neighbors are assigned close together.
	order := bfsOrder(g)

	assign := make([][]core.Label, g.N())
	steps := 0

	var rec func(idx int) (bool, error)
	rec = func(idx int) (bool, error) {
		if idx == len(order) {
			return true, nil
		}
		v := order[idx]
		for ci := range nodeConfigs {
			for _, perm := range perms[ci] {
				steps++
				if steps > maxSteps {
					return false, fmt.Errorf("solve: exceeded step budget of %d", maxSteps)
				}
				ok := true
				for port := 0; port < delta; port++ {
					w, _, wPort := g.Neighbor(v, port)
					if assign[w] == nil {
						continue
					}
					if !compatible[perm[port]][assign[w][wPort]] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				assign[v] = perm
				done, err := rec(idx + 1)
				if err != nil || done {
					return done, err
				}
				assign[v] = nil
			}
		}
		return false, nil
	}

	done, err := rec(0)
	if err != nil {
		return nil, false, err
	}
	if !done {
		return nil, false, nil
	}
	sol := &sim.Solution{Labels: assign}
	return sol, true, nil
}

func bfsOrder(g *graph.Graph) []int {
	order := make([]int, 0, g.N())
	seen := make([]bool, g.N())
	for start := 0; start < g.N(); start++ {
		if seen[start] {
			continue
		}
		seen[start] = true
		queue := []int{start}
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			order = append(order, v)
			for port := 0; port < g.Degree(v); port++ {
				w, _, _ := g.Neighbor(v, port)
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return order
}
