package oracle

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fixpoint"
)

// This file cross-validates the round-elimination machinery against the
// brute-force oracle, in the spirit of Bastide–Fraigniaud
// (arXiv:2108.01989): the oracle decides solvability from first
// principles (exhaustive search over view-consistent output
// assignments), independently of core.Speedup and internal/fixpoint, so
// the relations below are falsifiable statements about the
// implementation.
//
// The relations checked are exactly the directions of the paper's
// theorems that hold on arbitrary concrete families:
//
//   - Zero-round: on a pairing-complete family (every port pair
//     realized by some edge), a 0-round algorithm exists iff
//     core.ZeroRoundSolvableNoInput holds — the adversary argument of
//     Section 3 becomes exact.
//
//   - Speedup soundness (the upper-bound direction of Theorem 1): if
//     Speedup(Π) is solvable in t−1 rounds on a family whose instances
//     carry edge orientations, then Π is solvable in t rounds on the
//     same family. The decoding uses only Properties 2/3/5/6 of the
//     derived constraints and one extra round, with the orientation
//     breaking the W = X tie on each edge — it holds on every graph,
//     unlike the speedup direction, which needs t-independence and
//     girth and is therefore NOT asserted on small instances.
//
//   - Fixpoint upper bound: when the iterated-speedup driver classifies
//     Π as ZeroRound after s steps, iterating the decoding gives an
//     s-round algorithm for Π on oriented families, so the oracle must
//     report Π solvable in s rounds there.

// Families bundles the concrete instance sets a conformance run uses.
type Families struct {
	// Plain carries no inputs and should be pairing-complete for the
	// zero-round equivalence to be exact.
	Plain []Instance
	// Oriented carries an edge orientation on every instance, the
	// input Theorem 2's simplification requires for decoding.
	Oriented []Instance
}

// DefaultFamilies returns the stock conformance families at a given Δ:
// every port numbering of C_4 (plus all its orientations) for Δ = 2,
// and the small Δ-regular named graphs with seeded port shuffles and
// orientations otherwise. Deterministic for a given seed.
func DefaultFamilies(delta int, seed int64) (Families, error) {
	if delta == 2 {
		plain, err := Cycles(4)
		if err != nil {
			return Families{}, err
		}
		oriented, err := WithAllOrientations(plain)
		if err != nil {
			return Families{}, err
		}
		return Families{Plain: plain, Oriented: oriented}, nil
	}
	bases, err := RegularBases(delta, 2*delta+4)
	if err != nil {
		return Families{}, err
	}
	return Families{
		Plain:    WithShuffledPorts(bases, 6, seed),
		Oriented: WithRandomOrientations(WithShuffledPorts(bases, 3, seed+1), 3, seed+2),
	}, nil
}

// Check is one verified relation between the oracle and the
// round-elimination machinery.
type Check struct {
	Name   string `json:"name"`
	Holds  bool   `json:"holds"`
	Detail string `json:"detail"`
}

// Report is the outcome of a conformance run for one problem.
type Report struct {
	Problem string  `json:"problem"`
	Delta   int     `json:"delta"`
	MaxT    int     `json:"max_rounds"`
	OK      bool    `json:"ok"`
	Checks  []Check `json:"checks"`
}

// Conformance cross-validates p's oracle verdicts against its
// Speedup derivation and fixpoint classification, for round counts up
// to maxT. Options are forwarded to every Decide call.
func Conformance(name string, p *core.Problem, fams Families, maxT int, opts ...Option) (*Report, error) {
	if maxT < 1 {
		return nil, fmt.Errorf("oracle: conformance needs maxT >= 1, got %d", maxT)
	}
	o := buildOptions(opts)
	rep := &Report{Problem: name, Delta: p.Delta(), MaxT: maxT, OK: true}
	add := func(c Check) {
		rep.Checks = append(rep.Checks, c)
		rep.OK = rep.OK && c.Holds
	}

	// Zero-round equivalence on the plain family.
	zeroCheck := func(label string, q *core.Problem) error {
		_, zr := core.ZeroRoundSolvableNoInput(q)
		v0, err := Decide(q, fams.Plain, 0, opts...)
		if err != nil {
			return err
		}
		pc := PairingComplete(fams.Plain, q.Delta())
		holds := v0.Solvable == zr
		if !pc {
			// Without pairing-completeness only the upper-bound
			// direction is sound.
			holds = !zr || v0.Solvable
		}
		add(Check{
			Name:  label,
			Holds: holds,
			Detail: fmt.Sprintf("ZeroRoundSolvableNoInput=%v oracle@0=%v pairingComplete=%v",
				zr, v0.Solvable, pc),
		})
		return nil
	}
	if err := zeroCheck("zero-round", p); err != nil {
		return nil, err
	}

	// Speedup soundness on the oriented family, one pair per t. The
	// derivation runs under the conformance worker count and — when
	// WithSpeedupStates set one — a state budget, so a randomized
	// harness can feed arbitrary generated problems without risking an
	// unbounded enumeration (the budget error surfaces to the caller,
	// which treats it as "too heavy to cross-check", not a failure).
	spOpts := []core.Option{core.WithWorkers(o.workers)}
	if n := o.speedupStates; n > 0 {
		spOpts = append(spOpts, core.WithMaxStates(n))
	}
	sp, err := core.Speedup(p, spOpts...)
	if err != nil {
		return nil, fmt.Errorf("oracle: conformance: speedup of %s: %w", name, err)
	}
	origAt := map[int]*Verdict{} // Π verdicts on the oriented family, by t
	for t := 1; t <= maxT; t++ {
		d, err := Decide(sp, fams.Oriented, t-1, opts...)
		if err != nil {
			return nil, err
		}
		o, err := Decide(p, fams.Oriented, t, opts...)
		if err != nil {
			return nil, err
		}
		origAt[t] = o
		add(Check{
			Name:  fmt.Sprintf("speedup-soundness/t=%d", t),
			Holds: !d.Solvable || o.Solvable,
			Detail: fmt.Sprintf("Speedup(Π)@%d solvable=%v, Π@%d solvable=%v",
				t-1, d.Solvable, t, o.Solvable),
		})
	}
	// The derived problem must satisfy the zero-round equivalence too.
	if err := zeroCheck("zero-round/speedup", sp); err != nil {
		return nil, err
	}

	// Fixpoint upper bound: a ZeroRound classification after s steps
	// promises an s-round algorithm on oriented families. The driver
	// runs under a tight state budget (WithFixpointStates) so heavy
	// trajectories degrade to an unasserted BudgetExceeded.
	res, err := fixpoint.Run(p, fixpoint.Options{
		MaxSteps: maxT,
		Core:     []core.Option{core.WithMaxStates(o.fixpointStates), core.WithWorkers(o.workers)},
	})
	if err != nil {
		return nil, err
	}
	if res.Kind == fixpoint.ZeroRound && res.Steps >= 1 {
		// res.Steps <= maxT, so the speedup loop above already decided
		// this exact point — reuse its verdict instead of re-searching.
		o := origAt[res.Steps]
		if o == nil {
			var err error
			o, err = Decide(p, fams.Oriented, res.Steps, opts...)
			if err != nil {
				return nil, err
			}
		}
		add(Check{
			Name:  "fixpoint-upper-bound",
			Holds: o.Solvable,
			Detail: fmt.Sprintf("trajectory 0-round solvable after %d steps; oracle Π@%d solvable=%v on oriented family",
				res.Steps, res.Steps, o.Solvable),
		})
	} else {
		add(Check{
			Name:  "fixpoint-upper-bound",
			Holds: true,
			Detail: fmt.Sprintf("fixpoint classification %q within %d steps carries no oracle-checkable upper bound",
				res.Kind, maxT),
		})
	}
	return rep, nil
}
