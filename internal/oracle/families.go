package oracle

import (
	"fmt"
	"strings"
)

// FamilyNames lists the named instance families BuildFamily accepts, in
// documentation order. Each family is a deterministic function of
// (Δ, maxN, seed), so two callers naming the same family with the same
// parameters decide over the same instances — which is what lets
// cmd/verify and the HTTP service share verdicts byte-for-byte.
func FamilyNames() []string {
	return []string{"cycles", "oriented-cycles", "trees", "oriented-trees", "regular", "oriented-regular"}
}

// DefaultFamilyName resolves the family used when a caller names none:
// cycles at Δ = 2 (the only 2-regular connected graphs), the shuffled
// Δ-regular bases otherwise.
func DefaultFamilyName(delta int) string {
	if delta == 2 {
		return "cycles"
	}
	return "regular"
}

// BuildFamily instantiates a named instance family for a problem at the
// given Δ. The empty name selects DefaultFamilyName(delta). maxN sizes
// the sized families (cycle lengths, regular-base orders); seed drives
// the shuffled and randomly oriented variants. The returned slice is
// deterministic in (name, delta, maxN, seed).
//
// Families:
//
//	cycles            every port numbering of C_3..C_maxN         (Δ=2)
//	oriented-cycles   cycles × every edge orientation             (Δ=2)
//	trees             every port numbering of the depth-1
//	                  truncated Δ-regular tree (decide with
//	                  WithRelaxedDegrees: leaves have degree 1)
//	oriented-trees    trees × every edge orientation
//	regular           small Δ-regular graphs, shuffled ports
//	oriented-regular  regular × seeded random orientations
func BuildFamily(name string, delta, maxN int, seed int64) ([]Instance, error) {
	if name == "" {
		name = DefaultFamilyName(delta)
	}
	switch name {
	case "cycles":
		return CycleRange(3, maxN)
	case "oriented-cycles":
		insts, err := CycleRange(3, maxN)
		if err != nil {
			return nil, err
		}
		return WithAllOrientations(insts)
	case "trees":
		return Trees(delta, 1)
	case "oriented-trees":
		insts, err := Trees(delta, 1)
		if err != nil {
			return nil, err
		}
		return WithAllOrientations(insts)
	case "regular":
		bases, err := RegularBases(delta, maxN+2*delta)
		if err != nil {
			return nil, err
		}
		return WithShuffledPorts(bases, 6, seed), nil
	case "oriented-regular":
		bases, err := RegularBases(delta, maxN+2*delta)
		if err != nil {
			return nil, err
		}
		return WithRandomOrientations(WithShuffledPorts(bases, 3, seed), 3, seed+1), nil
	default:
		return nil, fmt.Errorf("oracle: unknown family %q (%s)", name, strings.Join(FamilyNames(), ", "))
	}
}
