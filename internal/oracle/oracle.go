// Package oracle is a brute-force solvability decider for locally
// checkable problems in the port numbering model: given a problem Π, a
// finite family of concrete port-numbered instances (optionally carrying
// round-0 inputs such as edge orientations or identifiers) and a round
// count t, it decides whether ONE deterministic t-round algorithm solves
// Π on EVERY instance of the family.
//
// The normal form of Section 3 of the paper makes this decidable: a
// t-round algorithm is exactly a function from radius-t views to one
// output label per port. The oracle therefore collects the distinct
// radius-t view classes occurring across the family and searches for an
// assignment of per-port output labels to classes such that every node
// satisfies the node constraint and every edge the edge constraint —
// a finite constraint satisfaction problem, solved exactly.
//
// The oracle is the conformance baseline for the round-elimination
// machinery (see conformance.go): its verdicts are independent of
// core.Speedup, internal/fixpoint and internal/solve, so agreement
// between them is evidence, in the style of Bastide–Fraigniaud
// (arXiv:2108.01989), that the speedup implementation is sound.
//
// The search is parallelized over instances (view collection) and over
// the branches of the top-level search variable, with the shared
// worker/atomic-budget substrate of internal/par; Solvable and Witness
// are byte-identical for every worker count whenever the search
// completes within the step budget. At the budget edge the verdict is
// never wrong, but concurrent branches drain the shared budget faster,
// so a parallel run may report ErrSearchBudget where a sequential run
// still finishes.
package oracle

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/intern"
	"repro/internal/par"
	"repro/internal/sim"
)

// ErrSearchBudget is wrapped by budget-exhaustion failures of the
// assignment search, so callers can distinguish "too big to decide"
// from genuine errors.
var ErrSearchBudget = errors.New("oracle: search budget exceeded")

// defaultMaxSteps bounds the number of candidate tuple trials across
// the whole search (all workers); families beyond it are rejected
// rather than silently truncated.
const defaultMaxSteps = 20_000_000

type options struct {
	workers        int
	maxSteps       int
	relaxed        bool
	fixpointStates int
	speedupStates  int
}

// Option configures Decide.
type Option func(*options)

// WithWorkers sets the number of concurrent workers used for view
// collection and the top-level search branches. n <= 0 selects
// runtime.GOMAXPROCS(0), the default. Solvable and Witness are
// byte-identical for every worker count as long as the search stays
// within the step budget (see the package comment for the
// budget-exhaustion caveat).
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithMaxSteps overrides the cap on candidate tuple trials; the cap is
// shared atomically across workers, so "total work bounded" holds for
// every worker count.
func WithMaxSteps(n int) Option {
	return func(o *options) { o.maxSteps = n }
}

// WithRelaxedDegrees admits instances containing nodes whose degree
// differs from the problem's Δ: such nodes are exempt from the node
// constraint (their ports may carry any label) while every edge remains
// constrained. This is the standard convention for truncated trees,
// whose leaves have degree 1.
func WithRelaxedDegrees() Option {
	return func(o *options) { o.relaxed = true }
}

// WithFixpointStates overrides the state budget Conformance grants the
// iterated-speedup driver for its classification (default
// defaultFixpointStates — deliberately small, so problems whose
// trajectories are too heavy to classify degrade to "no assertable
// upper bound" instead of stalling the run). Ignored by Decide.
func WithFixpointStates(n int) Option {
	return func(o *options) { o.fixpointStates = n }
}

// WithSpeedupStates bounds the core.WithMaxStates budget Conformance
// grants its one-shot Speedup derivation (the Π → Π_1 it decides the
// speedup-soundness relation on). The default, 0, leaves the derivation
// unbounded — correct for the hand-picked catalog, but a randomized
// harness feeding arbitrary generated problems must set a budget so a
// pathological Π degrades to a budget error instead of an unbounded
// enumeration. Ignored by Decide.
func WithSpeedupStates(n int) Option {
	return func(o *options) { o.speedupStates = n }
}

// defaultFixpointStates keeps the conformance fixpoint classification
// cheap: trajectories needing more states classify as BudgetExceeded,
// which carries no oracle-checkable claim.
const defaultFixpointStates = 50_000

func buildOptions(opts []Option) options {
	o := options{maxSteps: defaultMaxSteps, fixpointStates: defaultFixpointStates}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// ClassOutputs is the witness entry for one view class: the label (by
// name) the algorithm outputs on each port of any node with this view.
type ClassOutputs struct {
	ViewKey string   `json:"view_key"`
	Outputs []string `json:"outputs"`
}

// Verdict is the oracle's decision for one (problem, family, rounds)
// point.
type Verdict struct {
	Rounds    int            `json:"rounds"`
	Instances int            `json:"instances"`
	Nodes     int            `json:"nodes"`
	Classes   int            `json:"classes"`
	Solvable  bool           `json:"solvable"`
	Witness   []ClassOutputs `json:"witness,omitempty"`
}

// arcTo is one directed compatibility constraint from the owning class:
// my port myPort meets class other's port otherPort across some edge.
type arcTo struct {
	other             int
	myPort, otherPort int
}

// pairKey is a normalized (class, port, class, port) constraint key.
type pairKey struct{ ca, pa, cb, pb int }

// Decide reports whether a single deterministic t-round port-numbering
// algorithm solves p on every instance of the family.
func Decide(p *core.Problem, insts []Instance, t int, opts ...Option) (*Verdict, error) {
	o := buildOptions(opts)
	if t < 0 {
		return nil, fmt.Errorf("oracle: negative round count %d", t)
	}
	if len(insts) == 0 {
		return nil, fmt.Errorf("oracle: empty instance family")
	}
	delta := p.Delta()

	// 1. Collect the radius-t view classes, in parallel over instances.
	// View keys are interned to dense handles as they are produced, so
	// every later per-node lookup is a slice index instead of a
	// string-keyed map probe over long view keys.
	views := intern.NewStrings()
	type instViews struct {
		keys    []intern.Handle
		degrees []int
	}
	collected := make([]instViews, len(insts))
	totalNodes := 0
	par.RunIndexed(par.WorkerCount(o.workers, len(insts)), len(insts), func(ii int) {
		inst := insts[ii]
		b := sim.NewViewBuilder(inst.G, inst.In)
		iv := instViews{keys: make([]intern.Handle, inst.G.N()), degrees: make([]int, inst.G.N())}
		for v := 0; v < inst.G.N(); v++ {
			iv.keys[v] = views.Intern(b.View(v, t).Key())
			iv.degrees[v] = inst.G.Degree(v)
		}
		collected[ii] = iv
	})
	degreeOf := make([]int, views.Len())
	for ii := range collected {
		totalNodes += len(collected[ii].keys)
		for v, h := range collected[ii].keys {
			degreeOf[h] = collected[ii].degrees[v]
		}
	}
	// Canonical class numbering: sorted by view key, exactly as the
	// string-keyed engine numbered classes, so witnesses render
	// identically.
	classHandles := make([]intern.Handle, views.Len())
	for h := range classHandles {
		classHandles[h] = intern.Handle(h)
	}
	sort.Slice(classHandles, func(i, j int) bool {
		return views.Value(classHandles[i]) < views.Value(classHandles[j])
	})
	classKeys := make([]string, len(classHandles))
	classOf := make([]int, views.Len()) // handle → class rank
	for i, h := range classHandles {
		classKeys[i] = views.Value(h)
		classOf[h] = i
	}

	// 2. Candidate output tuples per class.
	tuplesByDegree := map[int][][]core.Label{}
	tuplesFor := func(d int) ([][]core.Label, error) {
		if cached, ok := tuplesByDegree[d]; ok {
			return cached, nil
		}
		var tuples [][]core.Label
		if d == delta {
			for _, cfg := range p.Node.Configs() {
				tuples = append(tuples, core.DistinctPermutations(cfg.Expand())...)
			}
		} else {
			if !o.relaxed {
				return nil, fmt.Errorf("oracle: instance node of degree %d, problem defined for Δ=%d (use WithRelaxedDegrees for truncated families)", d, delta)
			}
			if count := math.Pow(float64(p.Alpha.Size()), float64(d)); count > 1e6 {
				return nil, fmt.Errorf("oracle: free tuple space for degree %d is infeasible", d)
			}
			tuples = core.AllLabelTuples(p.Alpha.Size(), d)
		}
		sortTuples(tuples)
		tuplesByDegree[d] = tuples
		return tuples, nil
	}
	classTuples := make([][][]core.Label, len(classKeys))
	for i, h := range classHandles {
		tuples, err := tuplesFor(degreeOf[h])
		if err != nil {
			return nil, err
		}
		classTuples[i] = tuples
	}

	verdict := &Verdict{
		Rounds:    t,
		Instances: len(insts),
		Nodes:     totalNodes,
		Classes:   len(classKeys),
	}

	// 3. Compatibility constraints from the edges of every instance.
	rel := make([][]bool, p.Alpha.Size())
	for i := range rel {
		rel[i] = make([]bool, p.Alpha.Size())
	}
	for _, cfg := range p.Edge.Configs() {
		ls := cfg.Expand()
		rel[ls[0]][ls[1]] = true
		rel[ls[1]][ls[0]] = true
	}
	pairSeen := map[pairKey]bool{}
	var unary []pairKey  // ca == cb: both endpoints get the same tuple
	var binary []pairKey // ca != cb
	for ii, inst := range insts {
		for id := 0; id < inst.G.M(); id++ {
			u, v, pu, pv := inst.G.EdgeEndpoints(id)
			ca, cb := classOf[collected[ii].keys[u]], classOf[collected[ii].keys[v]]
			pa, pb := pu, pv
			if ca > cb || (ca == cb && pa > pb) {
				ca, pa, cb, pb = cb, pb, ca, pa
			}
			k := pairKey{ca, pa, cb, pb}
			if pairSeen[k] {
				continue
			}
			pairSeen[k] = true
			if ca == cb {
				unary = append(unary, k)
			} else {
				binary = append(binary, k)
			}
		}
	}
	sort.Slice(unary, func(i, j int) bool { return lessPair(unary[i], unary[j]) })
	sort.Slice(binary, func(i, j int) bool { return lessPair(binary[i], binary[j]) })

	// 4. Initial domains: tuple indices surviving the unary constraints.
	domains := make([][]int, len(classKeys))
	for c := range domains {
		for ti, tup := range classTuples[c] {
			ok := true
			for _, k := range unary {
				if k.ca != c {
					continue
				}
				if !rel[tup[k.pa]][tup[k.pb]] {
					ok = false
					break
				}
			}
			if ok {
				domains[c] = append(domains[c], ti)
			}
		}
		if len(domains[c]) == 0 {
			return verdict, nil // unsolvable: some view class has no viable output
		}
	}

	// Per-class binary adjacency, both directions.
	neigh := make([][]arcTo, len(classKeys))
	for _, k := range binary {
		neigh[k.ca] = append(neigh[k.ca], arcTo{other: k.cb, myPort: k.pa, otherPort: k.pb})
		neigh[k.cb] = append(neigh[k.cb], arcTo{other: k.ca, myPort: k.pb, otherPort: k.pa})
	}

	s := &searcher{
		tuples: classTuples,
		neigh:  neigh,
		rel:    rel,
		budget: par.NewBudget(o.maxSteps),
	}

	// 5. AC-3 style propagation to a deterministic fixed point.
	if !s.propagate(domains) {
		return verdict, nil
	}

	// 6. Backtracking search, parallel over the branches of the first
	// (most constrained) variable.
	assignment, err := s.solve(domains, o.workers)
	if err != nil {
		return nil, err
	}
	if assignment == nil {
		return verdict, nil
	}
	verdict.Solvable = true
	verdict.Witness = make([]ClassOutputs, len(classKeys))
	for c, ti := range assignment {
		names := make([]string, len(classTuples[c][ti]))
		for i, l := range classTuples[c][ti] {
			names[i] = p.Alpha.Name(l)
		}
		verdict.Witness[c] = ClassOutputs{ViewKey: classKeys[c], Outputs: names}
	}
	// Self-check the witness against every instance before reporting.
	allKeys := make([][]intern.Handle, len(insts))
	for ii := range collected {
		allKeys[ii] = collected[ii].keys
	}
	if err := checkWitness(p, insts, allKeys, classOf, classTuples, assignment, o.relaxed); err != nil {
		return nil, fmt.Errorf("oracle: internal error: witness failed validation: %w", err)
	}
	return verdict, nil
}

func lessPair(a, b pairKey) bool {
	if a.ca != b.ca {
		return a.ca < b.ca
	}
	if a.pa != b.pa {
		return a.pa < b.pa
	}
	if a.cb != b.cb {
		return a.cb < b.cb
	}
	return a.pb < b.pb
}

// searcher carries the immutable search structure; domains and
// assignments are passed explicitly so branches can run concurrently.
type searcher struct {
	tuples [][][]core.Label
	neigh  [][]arcTo
	rel    [][]bool
	budget *par.Budget
}

// propagate removes tuples with no support across some binary arc,
// repeating to a fixed point. It reports false when a domain empties.
// Deterministic: arcs are scanned in class order and pruning keeps
// domain order.
func (s *searcher) propagate(domains [][]int) bool {
	for {
		changed := false
		for c := range domains {
			for _, arc := range s.neigh[c] {
				kept := domains[c][:0]
				for _, ti := range domains[c] {
					la := s.tuples[c][ti][arc.myPort]
					supported := false
					for _, tj := range domains[arc.other] {
						if s.rel[la][s.tuples[arc.other][tj][arc.otherPort]] {
							supported = true
							break
						}
					}
					if supported {
						kept = append(kept, ti)
					} else {
						changed = true
					}
				}
				domains[c] = kept
				if len(kept) == 0 {
					return false
				}
			}
		}
		if !changed {
			return true
		}
	}
}

// solve runs the branch-parallel backtracking search and returns the
// deterministic (lowest-branch) satisfying assignment, or nil.
func (s *searcher) solve(domains [][]int, workers int) ([]int, error) {
	n := len(domains)
	assigned := make([]int, n)
	for i := range assigned {
		assigned[i] = -1
	}
	first := mrv(domains, assigned)
	if first < 0 {
		return assigned, nil // no variables at all
	}
	branches := domains[first]
	w := par.WorkerCount(workers, len(branches))
	if w <= 1 {
		cancel := func() bool { return false }
		for _, ti := range branches {
			got, err := s.tryBranch(domains, first, ti, cancel)
			if err != nil || got != nil {
				return got, err
			}
		}
		return nil, nil
	}

	// Parallel branches: every branch is searched deterministically;
	// the lowest successful branch index wins, and branches above a
	// known success are cancelled. Budget exhaustion anywhere aborts
	// the whole decision with ErrSearchBudget — even if some branch
	// already succeeded — because cancellation may then have stopped a
	// lower branch whose witness the sequential order would report.
	results := make([][]int, len(branches))
	errs := make([]error, len(branches))
	var best atomic.Int64
	best.Store(int64(len(branches)))
	var budgetBlown atomic.Bool
	par.RunIndexed(w, len(branches), func(bi int) {
		if int64(bi) > best.Load() || budgetBlown.Load() {
			return
		}
		cancel := func() bool { return best.Load() < int64(bi) || budgetBlown.Load() }
		got, err := s.tryBranch(domains, first, branches[bi], cancel)
		if err != nil {
			errs[bi] = err
			if errors.Is(err, ErrSearchBudget) {
				budgetBlown.Store(true)
			}
			return
		}
		if got != nil {
			results[bi] = got
			// CAS-min.
			for {
				cur := best.Load()
				if int64(bi) >= cur || best.CompareAndSwap(cur, int64(bi)) {
					break
				}
			}
		}
	})
	if budgetBlown.Load() {
		return nil, fmt.Errorf("oracle: search aborted: %w", ErrSearchBudget)
	}
	if b := best.Load(); int(b) < len(branches) {
		// A success wins only if every lower branch ran to completion —
		// guaranteed here: branches are cancelled only above a success
		// or on budget exhaustion, which returned above.
		for bi := 0; bi < int(b); bi++ {
			if errs[bi] != nil {
				return nil, errs[bi]
			}
		}
		return results[int(b)], nil
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// tryBranch assigns class first := tuple ti on a private copy of the
// domains and completes the search sequentially.
func (s *searcher) tryBranch(domains [][]int, first, ti int, cancel func() bool) ([]int, error) {
	local := make([][]int, len(domains))
	for i := range domains {
		local[i] = append([]int(nil), domains[i]...)
	}
	local[first] = []int{ti}
	assigned := make([]int, len(domains))
	for i := range assigned {
		assigned[i] = -1
	}
	if !s.budget.Take() {
		return nil, fmt.Errorf("oracle: search aborted: %w", ErrSearchBudget)
	}
	if !s.forwardCheck(local, first, ti, nil) {
		return nil, nil
	}
	assigned[first] = ti
	return s.rec(local, assigned, 1, cancel)
}

// rec is the sequential backtracking core: MRV variable order, value
// order ascending, forward checking against binary arcs.
func (s *searcher) rec(domains [][]int, assigned []int, count int, cancel func() bool) ([]int, error) {
	if cancel() {
		return nil, nil
	}
	if count == len(domains) {
		out := append([]int(nil), assigned...)
		return out, nil
	}
	v := mrv(domains, assigned)
	saved := map[int][]int{}
	for _, ti := range domains[v] {
		if cancel() {
			return nil, nil
		}
		if !s.budget.Take() {
			return nil, fmt.Errorf("oracle: search aborted: %w", ErrSearchBudget)
		}
		if s.forwardCheck(domains, v, ti, saved) {
			assigned[v] = ti
			got, err := s.rec(domains, assigned, count+1, cancel)
			if err != nil || got != nil {
				return got, err
			}
			assigned[v] = -1
		}
		for c, old := range saved {
			domains[c] = old
			delete(saved, c)
		}
	}
	return nil, nil
}

// forwardCheck prunes the domains of v's unassigned neighbors down to
// tuples compatible with assigning tuple ti at v. It reports false
// (leaving any partial pruning recorded in saved for the caller to
// undo) when a neighbor's domain empties. When saved is nil the caller
// promises v is the first assignment and pruning is applied in place.
func (s *searcher) forwardCheck(domains [][]int, v, ti int, saved map[int][]int) bool {
	tup := s.tuples[v][ti]
	for _, arc := range s.neigh[v] {
		la := tup[arc.myPort]
		kept := make([]int, 0, len(domains[arc.other]))
		for _, tj := range domains[arc.other] {
			if s.rel[la][s.tuples[arc.other][tj][arc.otherPort]] {
				kept = append(kept, tj)
			}
		}
		if len(kept) < len(domains[arc.other]) {
			if saved != nil {
				if _, dup := saved[arc.other]; !dup {
					saved[arc.other] = domains[arc.other]
				}
			}
			domains[arc.other] = kept
		}
		if len(kept) == 0 {
			return false
		}
	}
	return true
}

// mrv returns the unassigned variable with the smallest domain, lowest
// index on ties; -1 when everything is assigned.
func mrv(domains [][]int, assigned []int) int {
	best, bestSize := -1, 1<<62
	for c := range domains {
		if assigned[c] == -1 && len(domains[c]) < bestSize {
			best, bestSize = c, len(domains[c])
		}
	}
	return best
}

// checkWitness validates a satisfying assignment against every
// instance: node constraint at every Δ-degree node (all nodes unless
// relaxed), edge constraint on every edge.
func checkWitness(p *core.Problem, insts []Instance, allKeys [][]intern.Handle, classOf []int, classTuples [][][]core.Label, assignment []int, relaxed bool) error {
	delta := p.Delta()
	for ii, inst := range insts {
		labelsAt := func(v int) []core.Label {
			c := classOf[allKeys[ii][v]]
			return classTuples[c][assignment[c]]
		}
		for v := 0; v < inst.G.N(); v++ {
			if inst.G.Degree(v) != delta {
				if !relaxed {
					return fmt.Errorf("instance %s: node %d has degree %d", inst.Name, v, inst.G.Degree(v))
				}
				continue
			}
			if !p.Node.Contains(core.NewConfig(labelsAt(v)...)) {
				return fmt.Errorf("instance %s: node %d violates node constraint", inst.Name, v)
			}
		}
		for id := 0; id < inst.G.M(); id++ {
			u, v, pu, pv := inst.G.EdgeEndpoints(id)
			if !p.Edge.Contains(core.NewConfig(labelsAt(u)[pu], labelsAt(v)[pv])) {
				return fmt.Errorf("instance %s: edge (%d,%d) violates edge constraint", inst.Name, u, v)
			}
		}
	}
	return nil
}

// sortTuples orders tuples lexicographically so domain value order —
// and with it the reported witness — is canonical.
func sortTuples(tuples [][]core.Label) {
	sort.Slice(tuples, func(i, j int) bool {
		a, b := tuples[i], tuples[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
