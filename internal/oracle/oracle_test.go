package oracle_test

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/problems"
	"repro/internal/sim"
)

func mustCycles(t *testing.T, n int) []oracle.Instance {
	t.Helper()
	insts, err := oracle.Cycles(n)
	if err != nil {
		t.Fatal(err)
	}
	return insts
}

func decide(t *testing.T, p *core.Problem, insts []oracle.Instance, rounds int, opts ...oracle.Option) *oracle.Verdict {
	t.Helper()
	v, err := oracle.Decide(p, insts, rounds, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestFamilyEnumerators: the exhaustive enumerators produce the
// expected counts and structurally valid port-numbered graphs.
func TestFamilyEnumerators(t *testing.T) {
	c4 := mustCycles(t, 4)
	if len(c4) != 16 { // 2 ports per node, 4 nodes: 2^4 numberings
		t.Fatalf("Cycles(4) has %d instances, want 16", len(c4))
	}
	names := map[string]bool{}
	for _, inst := range c4 {
		if names[inst.Name] {
			t.Fatalf("duplicate instance name %q", inst.Name)
		}
		names[inst.Name] = true
		for v := 0; v < inst.G.N(); v++ {
			if inst.G.Degree(v) != 2 {
				t.Fatalf("%s: node %d has degree %d", inst.Name, v, inst.G.Degree(v))
			}
			for port := 0; port < inst.G.Degree(v); port++ {
				w, id, wPort := inst.G.Neighbor(v, port)
				back, backID, backPort := inst.G.Neighbor(w, wPort)
				if back != v || backID != id || backPort != port {
					t.Fatalf("%s: port maps not symmetric at node %d port %d", inst.Name, v, port)
				}
			}
		}
	}
	if !oracle.PairingComplete(c4, 2) {
		t.Fatal("Cycles(4) should realize every port pairing")
	}

	tr, err := oracle.Trees(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 6 { // root of degree 3: 3! numberings, leaves fixed
		t.Fatalf("Trees(3,1) has %d instances, want 6", len(tr))
	}

	oc4, err := oracle.WithAllOrientations(c4)
	if err != nil {
		t.Fatal(err)
	}
	if len(oc4) != 16*16 { // 4 edges: 2^4 orientations per numbering
		t.Fatalf("oriented C4 family has %d instances, want 256", len(oc4))
	}

	if _, err := oracle.Trees(3, 4); err == nil {
		t.Fatal("deep tree enumeration should exceed the family cap")
	}
}

// TestDecideTrivialProblem: the always-satisfied problem is 0-round
// solvable on every family, with a single view class at t=0.
func TestDecideTrivialProblem(t *testing.T) {
	p := core.MustParse("node:\nA A\nedge:\nA A")
	v := decide(t, p, mustCycles(t, 4), 0)
	if !v.Solvable {
		t.Fatal("trivial problem reported unsolvable")
	}
	if v.Classes != 1 {
		t.Fatalf("t=0 on a regular family has %d classes, want 1", v.Classes)
	}
	if len(v.Witness) != 1 || len(v.Witness[0].Outputs) != 2 {
		t.Fatalf("unexpected witness shape %+v", v.Witness)
	}
}

// TestDecideTwoColoringUnsolvable: proper 2-coloring is unsolvable by
// any deterministic PN algorithm on the full cycle families — odd
// cycles are not 2-colorable at all, and symmetric port numberings kill
// even cycles.
func TestDecideTwoColoringUnsolvable(t *testing.T) {
	insts, err := oracle.CycleRange(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := problems.KColoring(2, 2)
	for rounds := 0; rounds <= 2; rounds++ {
		if v := decide(t, p, insts, rounds); v.Solvable {
			t.Fatalf("2-coloring reported solvable at t=%d", rounds)
		}
	}
}

// TestDecideInputValidation covers the error paths.
func TestDecideInputValidation(t *testing.T) {
	p := problems.KColoring(3, 2)
	c4 := mustCycles(t, 4)
	if _, err := oracle.Decide(p, c4, -1); err == nil {
		t.Error("negative rounds accepted")
	}
	if _, err := oracle.Decide(p, nil, 1); err == nil {
		t.Error("empty family accepted")
	}
	tr, err := oracle.Trees(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.Decide(problems.SinklessColoring(3), tr, 1); err == nil {
		t.Error("degree-1 leaves accepted without WithRelaxedDegrees")
	}
}

// TestDecideRelaxedDegreesOnTrees: with leaves exempt from the node
// constraint, sinkless coloring is 1-round solvable on the depth-1
// tree family (the root can see which ports lead to leaves).
func TestDecideRelaxedDegreesOnTrees(t *testing.T) {
	tr, err := oracle.Trees(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := decide(t, problems.SinklessColoring(3), tr, 1, oracle.WithRelaxedDegrees())
	if !v.Solvable {
		t.Fatal("sinkless coloring unsolvable on depth-1 trees with relaxed leaves")
	}
}

// TestDecideDeterministicAcrossWorkers: the full verdict — including
// the witness — is byte-identical for every worker count, on both a
// solvable and an unsolvable point.
func TestDecideDeterministicAcrossWorkers(t *testing.T) {
	reg, err := oracle.RegularBases(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	fam := oracle.WithShuffledPorts(reg, 4, 1)
	oriented := oracle.WithRandomOrientations(fam, 2, 2)
	for _, tc := range []struct {
		name   string
		p      *core.Problem
		insts  []oracle.Instance
		rounds int
	}{
		{"weak2-solvable", problems.WeakTwoColoringPointer(3), oriented, 1},
		{"sinkless-unsolvable", problems.SinklessColoring(3), fam, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base, err := json.Marshal(decide(t, tc.p, tc.insts, tc.rounds, oracle.WithWorkers(1)))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8} {
				got, err := json.Marshal(decide(t, tc.p, tc.insts, tc.rounds, oracle.WithWorkers(workers)))
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(base) {
					t.Fatalf("workers=%d verdict diverged:\n%s\nvs\n%s", workers, got, base)
				}
			}
		})
	}
}

// TestDecideSearchBudget: a tiny step budget aborts the search with the
// sentinel error rather than returning a wrong verdict. The point is
// solvable with many view classes, so a completed search necessarily
// spends more than the granted steps.
func TestDecideSearchBudget(t *testing.T) {
	reg, err := oracle.RegularBases(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	oriented := oracle.WithRandomOrientations(oracle.WithShuffledPorts(reg, 4, 1), 2, 2)
	for _, workers := range []int{1, 4} {
		_, err := oracle.Decide(problems.WeakTwoColoringPointer(3), oriented, 1,
			oracle.WithMaxSteps(3), oracle.WithWorkers(workers))
		if !errors.Is(err, oracle.ErrSearchBudget) {
			t.Fatalf("workers=%d: got %v, want ErrSearchBudget", workers, err)
		}
	}
}

// TestWitnessSolvesEveryInstance replays a solvable verdict's witness
// through sim.Verify on every instance of the family: the oracle's
// witness is a genuine algorithm, not just a satisfiable certificate.
func TestWitnessSolvesEveryInstance(t *testing.T) {
	c4 := mustCycles(t, 4)
	oc4, err := oracle.WithAllOrientations(c4)
	if err != nil {
		t.Fatal(err)
	}
	p := core.MustParse("node:\nA B\nedge:\nA B\nA A\nB B")
	const rounds = 1
	v := decide(t, p, oc4, rounds)
	if !v.Solvable {
		t.Fatal("expected solvable point")
	}
	byKey := map[string][]core.Label{}
	for _, w := range v.Witness {
		labels := make([]core.Label, len(w.Outputs))
		for i, name := range w.Outputs {
			l, ok := p.Alpha.Lookup(name)
			if !ok {
				t.Fatalf("witness uses unknown label %q", name)
			}
			labels[i] = l
		}
		byKey[w.ViewKey] = labels
	}
	for _, inst := range oc4 {
		b := sim.NewViewBuilder(inst.G, inst.In)
		sol := &sim.Solution{Labels: make([][]core.Label, inst.G.N())}
		for node := 0; node < inst.G.N(); node++ {
			labels, ok := byKey[b.View(node, rounds).Key()]
			if !ok {
				t.Fatalf("%s: node %d has a view class missing from the witness", inst.Name, node)
			}
			sol.Labels[node] = labels
		}
		if err := sim.Verify(inst.G, sol, p); err != nil {
			t.Fatalf("%s: witness fails verification: %v", inst.Name, err)
		}
	}
}

// TestPermutePortsRoundTrip exercises the graph helper the enumerators
// rely on: applying a permutation and its inverse restores the
// original adjacency.
func TestPermutePortsRoundTrip(t *testing.T) {
	g := oracle.Prism()
	type adjEntry struct{ to, id, toPort int }
	snapshot := func() [][]adjEntry {
		out := make([][]adjEntry, g.N())
		for v := 0; v < g.N(); v++ {
			for port := 0; port < g.Degree(v); port++ {
				to, id, toPort := g.Neighbor(v, port)
				out[v] = append(out[v], adjEntry{to, id, toPort})
			}
		}
		return out
	}
	orig := snapshot()
	perm := []int{2, 0, 1}
	inv := []int{1, 2, 0}
	for v := 0; v < g.N(); v++ {
		if err := g.PermutePorts(v, perm); err != nil {
			t.Fatal(err)
		}
	}
	for v := 0; v < g.N(); v++ {
		if err := g.PermutePorts(v, inv); err != nil {
			t.Fatal(err)
		}
	}
	after := snapshot()
	for v := range orig {
		for p := range orig[v] {
			if orig[v][p] != after[v][p] {
				t.Fatalf("node %d port %d changed: %+v -> %+v", v, p, orig[v][p], after[v][p])
			}
		}
	}
	if err := g.PermutePorts(0, []int{0, 0, 2}); err == nil {
		t.Fatal("non-permutation accepted")
	}
}
