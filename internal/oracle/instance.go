package oracle

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Instance is one concrete port-numbered graph, optionally labeled with
// round-0 inputs, on which the oracle evaluates candidate algorithms.
type Instance struct {
	Name string
	G    *graph.Graph
	In   sim.Inputs
}

// MaxFamilySize caps the exhaustive enumerators: a family larger than
// this is a sign the caller asked for an infeasible parameterization,
// and the enumerator errors out instead of allocating without bound.
const MaxFamilySize = 16384

// nthPermutation returns the k-th permutation of 0..d-1 in
// lexicographic order (factorial number system decode).
func nthPermutation(d, k int) []int {
	avail := make([]int, d)
	for i := range avail {
		avail[i] = i
	}
	fact := 1
	for i := 2; i < d; i++ {
		fact *= i
	}
	out := make([]int, 0, d)
	for i := d - 1; i >= 1; i-- {
		idx := k / fact
		k %= fact
		out = append(out, avail[idx])
		avail = append(avail[:idx], avail[idx+1:]...)
		fact /= i
	}
	out = append(out, avail[0])
	return out
}

func factorial(d int) int {
	f := 1
	for i := 2; i <= d; i++ {
		f *= i
	}
	return f
}

// PortNumberings enumerates every port numbering of the base graph:
// the product, over all nodes, of all permutations of the node's
// ports. The base graph itself is the all-identity entry. Instances
// are named name/ports=<i0.i1...> by per-node permutation index.
func PortNumberings(base *graph.Graph, name string) ([]Instance, error) {
	total := 1
	radix := make([]int, base.N())
	for v := 0; v < base.N(); v++ {
		radix[v] = factorial(base.Degree(v))
		total *= radix[v]
		if total > MaxFamilySize {
			return nil, fmt.Errorf("oracle: port numberings of %s exceed the %d-instance cap", name, MaxFamilySize)
		}
	}
	out := make([]Instance, 0, total)
	idx := make([]int, base.N())
	for {
		g := base.Clone()
		label := name + "/ports="
		for v := 0; v < base.N(); v++ {
			if v > 0 {
				label += "."
			}
			label += strconv.Itoa(idx[v])
			if idx[v] != 0 {
				if err := g.PermutePorts(v, nthPermutation(base.Degree(v), idx[v])); err != nil {
					return nil, err
				}
			}
		}
		out = append(out, Instance{Name: label, G: g})
		// Increment the mixed-radix counter.
		v := 0
		for ; v < base.N(); v++ {
			idx[v]++
			if idx[v] < radix[v] {
				break
			}
			idx[v] = 0
		}
		if v == base.N() {
			return out, nil
		}
	}
}

// Cycles returns every port numbering of the cycle C_n (2^n
// instances): the exhaustive Δ=2 family.
func Cycles(n int) ([]Instance, error) {
	base, err := graph.Ring(n)
	if err != nil {
		return nil, err
	}
	return PortNumberings(base, "C"+strconv.Itoa(n))
}

// CycleRange returns the union of Cycles(n) for n in [minN, maxN].
func CycleRange(minN, maxN int) ([]Instance, error) {
	var out []Instance
	for n := minN; n <= maxN; n++ {
		insts, err := Cycles(n)
		if err != nil {
			return nil, err
		}
		out = append(out, insts...)
		if len(out) > MaxFamilySize {
			return nil, fmt.Errorf("oracle: cycle range [%d,%d] exceeds the %d-instance cap", minN, maxN, MaxFamilySize)
		}
	}
	return out, nil
}

// Trees returns every port numbering of the Δ-regular tree truncated
// at the given depth (leaves have degree 1, so deciding problems on
// this family requires WithRelaxedDegrees).
func Trees(delta, depth int) ([]Instance, error) {
	base, err := graph.RegularTree(delta, depth)
	if err != nil {
		return nil, err
	}
	return PortNumberings(base, fmt.Sprintf("T%d.%d", delta, depth))
}

// WithAllOrientations expands every instance into one copy per
// orientation of its edge set (2^m copies each).
func WithAllOrientations(insts []Instance) ([]Instance, error) {
	var out []Instance
	for _, inst := range insts {
		m := inst.G.M()
		if m >= 20 || len(out)+(1<<uint(m)) > MaxFamilySize {
			return nil, fmt.Errorf("oracle: orienting %s (%d edges) exceeds the %d-instance cap", inst.Name, m, MaxFamilySize)
		}
		for mask := 0; mask < 1<<uint(m); mask++ {
			o := graph.Orientation{Toward: make([]int, m)}
			for id := 0; id < m; id++ {
				u, v, _, _ := inst.G.EdgeEndpoints(id)
				if mask&(1<<uint(id)) == 0 {
					o.Toward[id] = u
				} else {
					o.Toward[id] = v
				}
			}
			in := inst.In
			in.Orientation = &o
			out = append(out, Instance{
				Name: inst.Name + "/orient=" + strconv.Itoa(mask),
				G:    inst.G,
				In:   in,
			})
		}
	}
	return out, nil
}

// WithRandomOrientations expands every instance into k copies with
// seeded pseudo-random orientations; byte-reproducible for a given
// seed.
func WithRandomOrientations(insts []Instance, k int, seed int64) []Instance {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Instance, 0, len(insts)*k)
	for _, inst := range insts {
		for i := 0; i < k; i++ {
			o := graph.RandomOrientation(inst.G, rng)
			in := inst.In
			in.Orientation = &o
			out = append(out, Instance{
				Name: inst.Name + "/rorient=" + strconv.Itoa(i),
				G:    inst.G,
				In:   in,
			})
		}
	}
	return out
}

// WithUniqueIDs labels every instance with the deterministic unique
// identifiers 1..n (node v gets v+1).
func WithUniqueIDs(insts []Instance) []Instance {
	out := make([]Instance, len(insts))
	for i, inst := range insts {
		ids := make([]int, inst.G.N())
		for v := range ids {
			ids[v] = v + 1
		}
		in := inst.In
		in.IDs = ids
		out[i] = Instance{Name: inst.Name + "/ids", G: inst.G, In: in}
	}
	return out
}

// Prism returns the triangular prism C_3 × K_2 (3-regular, n = 6).
func Prism() *graph.Graph {
	b := graph.NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {0, 3}, {1, 4}, {2, 5}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			panic(err) // static construction; cannot fail
		}
	}
	return b.Build()
}

// RegularBases returns the base Δ-regular graphs the oracle families
// build on: rings for Δ = 2; K_4, K_{3,3} and the prism for Δ = 3;
// K_{Δ+1} and K_{Δ,Δ} for larger Δ.
func RegularBases(delta, maxN int) ([]Instance, error) {
	var out []Instance
	add := func(name string, g *graph.Graph, err error) error {
		if err != nil {
			return err
		}
		if g.N() <= maxN {
			out = append(out, Instance{Name: name, G: g})
		}
		return nil
	}
	switch {
	case delta == 2:
		for n := 3; n <= maxN; n++ {
			g, err := graph.Ring(n)
			if err := add("C"+strconv.Itoa(n), g, err); err != nil {
				return nil, err
			}
		}
	case delta == 3:
		k4, err := graph.Complete(4)
		if err := add("K4", k4, err); err != nil {
			return nil, err
		}
		k33, err := graph.CompleteBipartite(3, 3)
		if err := add("K3.3", k33, err); err != nil {
			return nil, err
		}
		if err := add("prism", Prism(), nil); err != nil {
			return nil, err
		}
	default:
		kc, err := graph.Complete(delta + 1)
		if err := add(fmt.Sprintf("K%d", delta+1), kc, err); err != nil {
			return nil, err
		}
		kb, err := graph.CompleteBipartite(delta, delta)
		if err := add(fmt.Sprintf("K%d.%d", delta, delta), kb, err); err != nil {
			return nil, err
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("oracle: no Δ=%d base graph fits n <= %d", delta, maxN)
	}
	return out, nil
}

// WithShuffledPorts expands every instance with k seeded pseudo-random
// port shufflings (the canonical numbering is kept as well);
// byte-reproducible for a given seed.
func WithShuffledPorts(insts []Instance, k int, seed int64) []Instance {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Instance, 0, len(insts)*(k+1))
	for _, inst := range insts {
		out = append(out, inst)
		for i := 0; i < k; i++ {
			g := inst.G.Clone()
			g.ShufflePorts(rng)
			out = append(out, Instance{
				Name: inst.Name + "/shuffle=" + strconv.Itoa(i),
				G:    g,
				In:   inst.In,
			})
		}
	}
	return out
}

// PairingComplete reports whether, for every port pair (i, j) with
// 0 <= i <= j < Δ, some edge of some instance joins port i of one
// endpoint to port j of the other. On pairing-complete families the
// oracle's 0-round verdict coincides exactly with
// core.ZeroRoundSolvableNoInput (the adversary can realize every
// pairing).
func PairingComplete(insts []Instance, delta int) bool {
	need := map[[2]int]bool{}
	for i := 0; i < delta; i++ {
		for j := i; j < delta; j++ {
			need[[2]int{i, j}] = true
		}
	}
	for _, inst := range insts {
		for id := 0; id < inst.G.M(); id++ {
			_, _, pu, pv := inst.G.EdgeEndpoints(id)
			if pu > pv {
				pu, pv = pv, pu
			}
			delete(need, [2]int{pu, pv})
		}
		if len(need) == 0 {
			return true
		}
	}
	return len(need) == 0
}
