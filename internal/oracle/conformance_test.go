package oracle_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fixpoint"
	"repro/internal/oracle"
	"repro/internal/problems"
)

// TestCatalogConformance is the acceptance harness: for every catalog
// problem, the oracle's first-principles verdicts must agree with the
// round-elimination machinery —
//
//   - zero-round equivalence on pairing-complete plain families, for
//     the problem and its speedup;
//   - speedup soundness (Speedup(Π) solvable in t−1 ⇒ Π solvable in t)
//     on oriented families for t ∈ {1, 2};
//   - the fixpoint driver's ZeroRound upper bounds.
//
// The superweak entry exercises the marquee point — its trajectory
// becomes 0-round solvable after one step, so the oracle must find a
// 1-round algorithm on oriented Δ=3 instances — and is the expensive
// one (its Speedup call dominates), so it is skipped in -short mode
// like the other superweak derivations.
func TestCatalogConformance(t *testing.T) {
	families := map[int]oracle.Families{}
	for _, e := range problems.Catalog() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			if testing.Short() && e.Name == "superweak/k=2,delta=3" {
				t.Skip("superweak derivation is heavy; skipped in -short mode")
			}
			delta := e.Problem.Delta()
			fams, ok := families[delta]
			if !ok {
				var err error
				fams, err = oracle.DefaultFamilies(delta, 1)
				if err != nil {
					t.Fatal(err)
				}
				families[delta] = fams
			}
			var opts []oracle.Option
			if e.Name == "superweak/k=2,delta=3" {
				// The default budget deliberately under-funds heavy
				// trajectories; superweak's closes within 200k states
				// and is the one ZeroRound upper bound worth paying
				// for.
				opts = append(opts, oracle.WithFixpointStates(200_000))
			}
			rep, err := oracle.Conformance(e.Name, e.Problem, fams, 2, opts...)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range rep.Checks {
				if !c.Holds {
					t.Errorf("check %s failed: %s", c.Name, c.Detail)
				}
			}
			if !rep.OK {
				t.Fatalf("conformance failed for %s", e.Name)
			}
		})
	}
}

// TestSuperweakFixpointUpperBound pins the marquee conformance point
// explicitly: the fixpoint driver classifies superweak 2-coloring at
// Δ=3 as 0-round solvable after exactly one speedup step, and the
// oracle independently confirms a 1-round algorithm on oriented Δ=3
// instances.
func TestSuperweakFixpointUpperBound(t *testing.T) {
	if testing.Short() {
		t.Skip("superweak derivation is heavy; skipped in -short mode")
	}
	p := problems.Superweak(2, 3)
	res, err := fixpoint.Run(p, fixpoint.Options{MaxSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != fixpoint.ZeroRound || res.Steps != 1 {
		t.Fatalf("fixpoint classified %v after %d steps, want zero-round after 1", res.Kind, res.Steps)
	}
	fams, err := oracle.DefaultFamilies(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	v, err := oracle.Decide(p, fams.Oriented, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Solvable {
		t.Fatal("oracle contradicts the 1-round upper bound for superweak on oriented instances")
	}
}

// TestConformanceRejectsBadMaxT covers the argument validation.
func TestConformanceRejectsBadMaxT(t *testing.T) {
	fams, err := oracle.DefaultFamilies(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.Conformance("x", problems.KColoring(2, 2), fams, 0); err == nil {
		t.Fatal("maxT=0 accepted")
	}
}

// TestSpeedupSoundnessOnTrees runs the decode-direction check on the
// truncated-tree family with relaxed leaf degrees: the implication is
// family-independent, so it must hold there too.
func TestSpeedupSoundnessOnTrees(t *testing.T) {
	tr, err := oracle.Trees(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	oriented, err := oracle.WithAllOrientations(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []struct {
		name string
		p    *core.Problem
	}{
		{"sinkless-orientation", problems.SinklessOrientation(3)},
		{"sinkless-coloring", problems.SinklessColoring(3)},
	} {
		sp, err := core.Speedup(e.p)
		if err != nil {
			t.Fatal(err)
		}
		d, err := oracle.Decide(sp, oriented, 0, oracle.WithRelaxedDegrees())
		if err != nil {
			t.Fatal(err)
		}
		o, err := oracle.Decide(e.p, oriented, 1, oracle.WithRelaxedDegrees())
		if err != nil {
			t.Fatal(err)
		}
		if d.Solvable && !o.Solvable {
			t.Fatalf("%s: speedup soundness violated on trees (speedup@0=%v, orig@1=%v)",
				e.name, d.Solvable, o.Solvable)
		}
	}
}
